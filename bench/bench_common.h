// Shared command-line handling for the table/figure benchmark harnesses.
//
// Every harness accepts:
//   --scale=<0..1>      suite scale factor (default 1.0 = Table 1 magnitudes)
//   --seed=<n>          router seed (default 1)
//   --comm              also print the communication-volume table
//   --trace=<file>      write a Chrome trace of the routing phases
//   --metrics=<file>    write run metrics as JSON
//   --resource-report=<file>  write the allocation/RSS resource report
//   --resource-canonical      strip machine-dependent fields from the report
//   --profile-sample=<hz>     sample the call stack with SIGPROF
//   --profile-folded=<file>   write folded stacks (implies --profile-sample)
//   --log-level=<lvl>   debug|info|warn|error|off
//   --fault-plan=<spec> deterministic fault injection (see mp::FaultPlan)
//   --recv-timeout=<s>  recv() timeout in virtual seconds
//   --max-retries=<n>   p2p retransmissions before a peer is presumed dead
//   --watchdog          enable the deadlock watchdog
// Unknown flags are ignored so the harnesses coexist with test drivers.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>

#include "ptwgr/mp/fault.h"
#include "ptwgr/obs/resource.h"
#include "ptwgr/parallel/common.h"
#include "ptwgr/support/log.h"
#include "ptwgr/support/metrics.h"
#include "ptwgr/support/profiler.h"
#include "ptwgr/support/trace.h"

namespace ptwgr::bench {

struct Args {
  double scale = 1.0;
  std::uint64_t seed = 1;
  bool comm = false;
  std::string trace_path;
  std::string metrics_path;
  std::string resource_report_path;
  bool resource_canonical = false;
  double profile_hz = 0.0;  // 0 = profiler off
  std::string profile_folded_path;
  std::string fault_plan;
  double recv_timeout = -1.0;
  int max_retries = 3;
  bool watchdog = false;
};

inline Args parse_args(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--scale=", 8) == 0) {
      args.scale = std::atof(arg + 8);
      if (args.scale <= 0.0 || args.scale > 1.0) {
        std::fprintf(stderr, "--scale must be in (0, 1]\n");
        std::exit(2);
      }
    } else if (std::strncmp(arg, "--seed=", 7) == 0) {
      args.seed = static_cast<std::uint64_t>(std::atoll(arg + 7));
    } else if (std::strcmp(arg, "--comm") == 0) {
      args.comm = true;
    } else if (std::strncmp(arg, "--trace=", 8) == 0) {
      args.trace_path = arg + 8;
    } else if (std::strncmp(arg, "--metrics=", 10) == 0) {
      args.metrics_path = arg + 10;
    } else if (std::strncmp(arg, "--resource-report=", 18) == 0) {
      args.resource_report_path = arg + 18;
    } else if (std::strcmp(arg, "--resource-canonical") == 0) {
      args.resource_canonical = true;
    } else if (std::strncmp(arg, "--profile-sample=", 17) == 0) {
      args.profile_hz = std::atof(arg + 17);
      if (args.profile_hz <= 0.0) {
        std::fprintf(stderr, "--profile-sample must be positive\n");
        std::exit(2);
      }
    } else if (std::strncmp(arg, "--profile-folded=", 17) == 0) {
      args.profile_folded_path = arg + 17;
    } else if (std::strncmp(arg, "--fault-plan=", 13) == 0) {
      args.fault_plan = arg + 13;
    } else if (std::strncmp(arg, "--recv-timeout=", 15) == 0) {
      args.recv_timeout = std::atof(arg + 15);
    } else if (std::strncmp(arg, "--max-retries=", 14) == 0) {
      args.max_retries = std::atoi(arg + 14);
    } else if (std::strcmp(arg, "--watchdog") == 0) {
      args.watchdog = true;
    } else if (std::strncmp(arg, "--log-level=", 12) == 0) {
      set_log_level(parse_log_level(arg + 12));
    }
  }
  if (!args.profile_folded_path.empty() && args.profile_hz <= 0.0) {
    args.profile_hz = 97.0;
  }
  return args;
}

/// Applies the fault-tolerance flags to a parallel-run option block.  One
/// shared FaultPlan serves the whole harness; kills fire once across all its
/// runs (pass a fresh plan per run if that matters).
inline void apply_fault_args(const Args& args, ParallelOptions& options) {
  options.fault.retry.max_retries = args.max_retries;
  options.fault.recv_timeout_seconds = args.recv_timeout;
  options.fault.watchdog = args.watchdog;
  if (!args.fault_plan.empty()) {
    options.fault.plan =
        std::make_shared<mp::FaultPlan>(mp::FaultPlan::parse(args.fault_plan));
    std::fprintf(stderr, "fault plan: %s\n",
                 options.fault.plan->summary().c_str());
  }
}

/// Activates tracing for the harness lifetime when --trace was given, and
/// writes the Chrome JSON on destruction.
class ScopedBenchTrace {
 public:
  explicit ScopedBenchTrace(const Args& args) : path_(args.trace_path) {
    if (!path_.empty()) set_active_trace(&collector_);
  }

  ~ScopedBenchTrace() {
    if (path_.empty()) return;
    set_active_trace(nullptr);
    std::ofstream out(path_);
    if (out) {
      out << collector_.to_chrome_json();
      std::fprintf(stderr, "trace written to %s\n", path_.c_str());
    } else {
      std::fprintf(stderr, "cannot open trace file %s\n", path_.c_str());
    }
  }

  ScopedBenchTrace(const ScopedBenchTrace&) = delete;
  ScopedBenchTrace& operator=(const ScopedBenchTrace&) = delete;

 private:
  std::string path_;
  TraceCollector collector_;
};

/// Installs the resource collector for the harness lifetime and writes the
/// serialized report on destruction when --resource-report was given.  With
/// `always`, the collector runs even without the flag so the harness can
/// embed peak-RSS / allocation totals in its own output (bench_report does).
class ScopedBenchResource {
 public:
  ScopedBenchResource(const Args& args, const char* harness,
                      bool always = false)
      : path_(args.resource_report_path),
        canonical_(args.resource_canonical) {
    if (path_.empty() && !always) return;
    collector_ = std::make_unique<obs::ResourceCollector>();
    meta_.algorithm = harness;
    meta_.seed = args.seed;
    obs::set_active_resource(collector_.get());
    collector_->start_rss_sampler(20.0);
  }

  ~ScopedBenchResource() {
    if (!collector_) return;
    collector_->stop_rss_sampler();
    obs::set_active_resource(nullptr);
    if (path_.empty()) return;
    std::ofstream out(path_);
    if (out) {
      out << obs::resource_report_to_json(*collector_, meta_,
                                          /*include_volatile=*/!canonical_);
      std::fprintf(stderr, "resource report written to %s\n", path_.c_str());
    } else {
      std::fprintf(stderr, "cannot open resource-report file %s\n",
                   path_.c_str());
    }
  }

  /// Stops the RSS sampler early (taking the final high-water-mark sample)
  /// so a snapshot read before destruction carries the true peak RSS.
  void finish_sampling() {
    if (collector_) collector_->stop_rss_sampler();
  }

  const obs::ResourceCollector* collector() const { return collector_.get(); }

  ScopedBenchResource(const ScopedBenchResource&) = delete;
  ScopedBenchResource& operator=(const ScopedBenchResource&) = delete;

 private:
  std::string path_;
  bool canonical_ = false;
  std::unique_ptr<obs::ResourceCollector> collector_;
  obs::ResourceMeta meta_;
};

/// Runs the sampling CPU profiler for the harness lifetime when
/// --profile-sample was given; prints the hottest frames (and writes the
/// folded stacks) on destruction.
class ScopedBenchProfiler {
 public:
  explicit ScopedBenchProfiler(const Args& args)
      : folded_path_(args.profile_folded_path) {
    if (args.profile_hz <= 0.0) return;
    SamplingProfiler::Options options;
    options.hz = args.profile_hz;
    profiler_ = std::make_unique<SamplingProfiler>(options);
    if (!profiler_->start()) {
      std::fprintf(stderr, "profiler failed to start; continuing without\n");
      profiler_.reset();
    }
  }

  ~ScopedBenchProfiler() {
    if (!profiler_) return;
    profiler_->stop();
    const std::string folded = profiler_->folded();
    if (!folded_path_.empty()) {
      std::ofstream out(folded_path_);
      if (out) {
        out << folded;
        std::fprintf(stderr, "folded stacks written to %s\n",
                     folded_path_.c_str());
      } else {
        std::fprintf(stderr, "cannot open folded-stack file %s\n",
                     folded_path_.c_str());
      }
    }
    std::fprintf(stderr, "%s",
                 render_hot_frames(summarize_folded(folded), 10).c_str());
  }

  ScopedBenchProfiler(const ScopedBenchProfiler&) = delete;
  ScopedBenchProfiler& operator=(const ScopedBenchProfiler&) = delete;

 private:
  std::string folded_path_;
  std::unique_ptr<SamplingProfiler> profiler_;
};

/// Writes the registry as JSON when --metrics was given.
inline void write_metrics(const Args& args, const MetricsRegistry& metrics) {
  if (args.metrics_path.empty()) return;
  std::ofstream out(args.metrics_path);
  if (out) {
    out << metrics.to_json();
    std::fprintf(stderr, "metrics written to %s\n",
                 args.metrics_path.c_str());
  } else {
    std::fprintf(stderr, "cannot open metrics file %s\n",
                 args.metrics_path.c_str());
  }
}

}  // namespace ptwgr::bench
