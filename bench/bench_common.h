// Shared command-line handling for the table/figure benchmark harnesses.
//
// Every harness accepts:
//   --scale=<0..1>   suite scale factor (default 1.0 = Table 1 magnitudes)
//   --seed=<n>       router seed (default 1)
// Unknown flags are ignored so the harnesses coexist with test drivers.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

namespace ptwgr::bench {

struct Args {
  double scale = 1.0;
  std::uint64_t seed = 1;
};

inline Args parse_args(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--scale=", 8) == 0) {
      args.scale = std::atof(arg + 8);
      if (args.scale <= 0.0 || args.scale > 1.0) {
        std::fprintf(stderr, "--scale must be in (0, 1]\n");
        std::exit(2);
      }
    } else if (std::strncmp(arg, "--seed=", 7) == 0) {
      args.seed = static_cast<std::uint64_t>(std::atoll(arg + 7));
    }
  }
  return args;
}

}  // namespace ptwgr::bench
