// Google-benchmark microbenchmarks of the message-passing runtime: p2p
// round-trips, collectives, and the grid-synchronization payloads the
// net-wise algorithm moves.  Measured wall time here is host overhead (the
// ranks are threads); the virtual-clock cost model is exercised separately
// by the table harnesses.
#include <benchmark/benchmark.h>

#include <numeric>

#include "ptwgr/mp/runtime.h"
#include "ptwgr/obs/ledger.h"

namespace {

using namespace ptwgr::mp;

void BM_PingPong(benchmark::State& state) {
  const auto bytes = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    run(2, [bytes](Communicator& comm) {
      std::vector<std::uint8_t> payload(bytes, 1);
      for (int i = 0; i < 10; ++i) {
        if (comm.rank() == 0) {
          comm.send_value(1, 0, payload);
          benchmark::DoNotOptimize(comm.recv_vector<std::uint8_t>(1, 0));
        } else {
          benchmark::DoNotOptimize(comm.recv_vector<std::uint8_t>(0, 0));
          comm.send_value(0, 0, payload);
        }
      }
    });
  }
  state.SetBytesProcessed(state.iterations() * 20 *
                          static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_PingPong)->Arg(64)->Arg(4096)->Arg(262144);

void BM_PingPongLedger(benchmark::State& state) {
  // Same round-trips with the causal ledger recording every send/recv.  The
  // delta against BM_PingPong is the *enabled* per-event cost; the disabled
  // cost is BM_PingPong itself (one relaxed load in the Communicator ctor,
  // then a cached null-pointer test per operation — the PR 1 contract).
  const auto bytes = static_cast<std::size_t>(state.range(0));
  ptwgr::obs::LedgerCollector ledger;
  ptwgr::obs::set_active_ledger(&ledger);
  for (auto _ : state) {
    run(2, [bytes](Communicator& comm) {
      std::vector<std::uint8_t> payload(bytes, 1);
      for (int i = 0; i < 10; ++i) {
        if (comm.rank() == 0) {
          comm.send_value(1, 0, payload);
          benchmark::DoNotOptimize(comm.recv_vector<std::uint8_t>(1, 0));
        } else {
          benchmark::DoNotOptimize(comm.recv_vector<std::uint8_t>(0, 0));
          comm.send_value(0, 0, payload);
        }
      }
    });
  }
  ptwgr::obs::set_active_ledger(nullptr);
  state.SetBytesProcessed(state.iterations() * 20 *
                          static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_PingPongLedger)->Arg(64)->Arg(4096)->Arg(262144);

void BM_Barrier(benchmark::State& state) {
  const int ranks = static_cast<int>(state.range(0));
  for (auto _ : state) {
    run(ranks, [](Communicator& comm) {
      for (int i = 0; i < 50; ++i) comm.barrier();
    });
  }
}
BENCHMARK(BM_Barrier)->Arg(2)->Arg(4)->Arg(8);

void BM_AllreduceGridState(benchmark::State& state) {
  // Payload sized like a full-scale avq.large demand grid snapshot.
  const int ranks = static_cast<int>(state.range(0));
  constexpr std::size_t kGridInts = 13000;
  for (auto _ : state) {
    run(ranks, [](Communicator& comm) {
      std::vector<std::int32_t> grid(kGridInts, comm.rank());
      for (int i = 0; i < 5; ++i) {
        benchmark::DoNotOptimize(comm.allreduce(grid, SumOp{}));
      }
    });
  }
}
BENCHMARK(BM_AllreduceGridState)->Arg(2)->Arg(8);

void BM_AllToAllRecords(benchmark::State& state) {
  const int ranks = static_cast<int>(state.range(0));
  for (auto _ : state) {
    run(ranks, [ranks](Communicator& comm) {
      std::vector<std::vector<std::int64_t>> outgoing(
          static_cast<std::size_t>(ranks));
      for (auto& part : outgoing) part.assign(512, comm.rank());
      benchmark::DoNotOptimize(comm.all_to_all(outgoing));
    });
  }
}
BENCHMARK(BM_AllToAllRecords)->Arg(2)->Arg(8);

void BM_WorldSpawn(benchmark::State& state) {
  // Cost of standing a rank world up and down — bounds how small a routing
  // problem is worth parallelizing at all.
  const int ranks = static_cast<int>(state.range(0));
  for (auto _ : state) {
    run(ranks, [](Communicator&) {});
  }
}
BENCHMARK(BM_WorldSpawn)->Arg(2)->Arg(8);

}  // namespace

BENCHMARK_MAIN();
