// Reproduces Table 1: characteristics of the six test circuits.
//
// The MCNC layout-synthesis originals are not redistributable; the suite
// regenerates circuits matched to their published characteristics (see
// DESIGN.md §2).  This harness prints what was actually generated, alongside
// the published targets, so any drift is visible.
#include <cstdio>

#include "bench_common.h"
#include "ptwgr/circuit/circuit_stats.h"
#include "ptwgr/circuit/suite.h"
#include "ptwgr/eval/report.h"

int main(int argc, char** argv) {
  const auto args = ptwgr::bench::parse_args(argc, argv);
  std::printf("%s\n", ptwgr::render_table1(args.scale).c_str());

  // Net-degree structure notes the paper calls out (§5).
  for (const auto& entry : ptwgr::benchmark_suite(args.scale)) {
    const auto circuit = ptwgr::build_suite_circuit(entry);
    const auto stats = ptwgr::compute_stats(circuit);
    std::printf(
        "%-10s mean pins/net %.2f, %.1f%% of nets have <= 5 pins, largest "
        "net %zu pins\n",
        entry.name.c_str(), stats.mean_pins_per_net,
        stats.fraction_nets_small * 100.0, stats.max_pins_on_net);
  }
  return 0;
}
