// Ablation: the pin-number-weight exponent α (paper §5).
//
// The weight -k^α schedules large nets first and reserves k^α quota for
// them; the paper remarks a particular α "works well for AVQ-LARGE", whose
// >3000-pin clock net dominates Steiner-construction cost.  This harness
// sweeps α and reports the k²-work imbalance (the quantity that actually
// bounds the Steiner phase's parallel time) and the modeled speedup of the
// row-wise algorithm, whose tree-building phase the partition drives.
#include <cstdio>

#include "bench_common.h"
#include "ptwgr/eval/experiment.h"
#include "ptwgr/route/router.h"
#include "ptwgr/support/stats.h"
#include "ptwgr/support/table.h"
#include "ptwgr/support/timer.h"

int main(int argc, char** argv) {
  using namespace ptwgr;
  const auto args = bench::parse_args(argc, argv);
  constexpr int kProcs = 8;

  const SuiteEntry entry = suite_entry("avq.large", args.scale);
  const Circuit circuit = build_suite_circuit(entry);
  const RowPartition rows = partition_rows(circuit, kProcs);

  RouterOptions router;
  router.seed = args.seed;
  const double serial_modeled =
      route_serial(build_suite_circuit(entry), router).timings.total() *
      mp::CostModel::sparc_center_smp().compute_scale;

  TextTable table("Pin-number-weight exponent sweep on avq.large (8 procs, "
                  "row-wise algorithm)");
  table.add_row({"alpha", "pin imbalance", "k^2 imbalance", "speedup"});
  for (const double alpha : {1.0, 1.2, 1.6, 2.0, 2.5}) {
    NetPartitionOptions options;
    options.scheme = NetPartitionScheme::PinNumberWeight;
    options.pin_weight_exponent = alpha;
    const NetPartition partition =
        partition_nets(circuit, kProcs, options, &rows);
    std::vector<double> work(kProcs, 0.0);
    for (std::size_t n = 0; n < circuit.num_nets(); ++n) {
      const auto k = static_cast<double>(
          circuit.net(NetId{static_cast<std::uint32_t>(n)}).pins.size());
      work[static_cast<std::size_t>(partition.owner[n])] += k * k;
    }

    ParallelOptions parallel;
    parallel.router = router;
    parallel.net_partition = options;
    bench::apply_fault_args(args, parallel);
    const auto result =
        route_parallel(build_suite_circuit(entry), ParallelAlgorithm::RowWise,
                       kProcs, parallel, mp::CostModel::sparc_center_smp());

    table.add_row({format_fixed(alpha, 1),
                   format_fixed(load_imbalance(partition.pin_load), 2),
                   format_fixed(load_imbalance(work), 2),
                   format_fixed(serial_modeled / result.modeled_seconds(),
                                2)});
  }
  std::printf("%s\n", table.to_string().c_str());
  return 0;
}
