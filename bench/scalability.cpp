// Extension figure: speedup scaling to 16 processors for all three
// algorithms on one mid-size circuit (the paper stops at 8 on the
// SparcCenter; its Paragon column reaches 16 for the hybrid only).
// This extrapolates the comparison the conclusions rest on: row-wise keeps
// scaling, hybrid tracks it at a gap, net-wise flattens as synchronization
// and replicated work dominate.
//
// Besides the table, --out=FILE (default BENCH_scalability.json) writes a
// machine-readable "ptwgr.bench_scalability" document — per-algorithm,
// per-P makespan, speedup, parallel efficiency, compute-imbalance ratio,
// and quality ratio — which CI archives next to BENCH_smoke.json.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "ptwgr/circuit/suite.h"
#include "ptwgr/parallel/parallel_router.h"
#include "ptwgr/route/router.h"
#include "ptwgr/support/json.h"
#include "ptwgr/support/table.h"

namespace {

struct ScalingPoint {
  int procs = 0;
  double makespan_seconds = 0.0;
  double speedup = 0.0;
  double efficiency = 0.0;
  double imbalance = 1.0;  // max/mean per-rank compute vtime
  double quality_ratio = 0.0;
};

struct AlgorithmSeries {
  std::string algorithm;
  std::vector<ScalingPoint> points;
};

double compute_imbalance(const ptwgr::mp::RunReport& report) {
  double max_compute = 0.0;
  double total = 0.0;
  for (const ptwgr::mp::CommStats& comm : report.rank_comm) {
    max_compute = std::max(max_compute, comm.compute_seconds);
    total += comm.compute_seconds;
  }
  const double mean = total / static_cast<double>(report.rank_comm.size());
  return mean > 0.0 ? max_compute / mean : 1.0;
}

std::string series_to_json(const std::vector<AlgorithmSeries>& series,
                           double scale, std::uint64_t seed,
                           double serial_seconds) {
  using ptwgr::json::number;
  using ptwgr::json::quoted;
  std::string out = "{\"schema\":\"ptwgr.bench_scalability\",\"version\":1";
  out += ",\"circuit\":\"industry2\"";
  out += ",\"platform\":\"smp\"";
  out += ",\"scale\":" + number(scale);
  out += ",\"seed\":" + number(seed);
  out += ",\"serial_seconds\":" + number(serial_seconds);
  out += ",\"algorithms\":[";
  for (std::size_t a = 0; a < series.size(); ++a) {
    if (a != 0) out += ",";
    out += "\n {\"algorithm\":" + quoted(series[a].algorithm);
    out += ",\"points\":[";
    for (std::size_t i = 0; i < series[a].points.size(); ++i) {
      const ScalingPoint& point = series[a].points[i];
      if (i != 0) out += ",";
      out += "\n  {\"procs\":" +
             number(static_cast<std::int64_t>(point.procs));
      out += ",\"makespan_seconds\":" + number(point.makespan_seconds);
      out += ",\"speedup\":" + number(point.speedup);
      out += ",\"efficiency\":" + number(point.efficiency);
      out += ",\"imbalance\":" + number(point.imbalance);
      out += ",\"quality_ratio\":" + number(point.quality_ratio) + "}";
    }
    out += "]}";
  }
  out += "]}\n";
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ptwgr;
  const auto args = bench::parse_args(argc, argv);
  std::string out_path = "BENCH_scalability.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--out=", 6) == 0) out_path = argv[i] + 6;
  }
  const SuiteEntry entry = suite_entry("industry2", args.scale);

  RouterOptions router;
  router.seed = args.seed;
  const Circuit circuit = build_suite_circuit(entry);
  const RoutingResult serial = route_serial(build_suite_circuit(entry), router);
  const double serial_modeled =
      serial.timings.total() * mp::CostModel::sparc_center_smp().compute_scale;

  TextTable table("Speedup scaling on industry2 (SparcCenter model)");
  std::vector<std::string> header{"algorithm"};
  std::vector<int> procs{1, 2, 4, 8, 12, 16};
  // The row-block partition needs at least one row per rank; scaled-down
  // suites cap the processor axis.
  std::erase_if(procs, [&](int p) {
    return static_cast<std::size_t>(p) > circuit.num_rows();
  });
  for (const int p : procs) header.push_back(std::to_string(p) + "p");
  table.add_row(header);

  std::vector<AlgorithmSeries> series;
  for (const auto algorithm :
       {ParallelAlgorithm::RowWise, ParallelAlgorithm::Hybrid,
        ParallelAlgorithm::NetWise}) {
    std::vector<std::string> speedups{to_string(algorithm)};
    std::vector<std::string> quality{"  (scaled tracks)"};
    AlgorithmSeries algo_series;
    algo_series.algorithm = to_string(algorithm);
    for (const int p : procs) {
      ParallelOptions options;
      options.router = router;
      bench::apply_fault_args(args, options);
      const auto result =
          route_parallel(build_suite_circuit(entry), algorithm, p, options,
                         mp::CostModel::sparc_center_smp());
      ScalingPoint point;
      point.procs = p;
      point.makespan_seconds = result.modeled_seconds();
      point.speedup = serial_modeled / result.modeled_seconds();
      point.efficiency = point.speedup / static_cast<double>(p);
      point.imbalance = compute_imbalance(result.report);
      point.quality_ratio =
          static_cast<double>(result.metrics.track_count) /
          static_cast<double>(serial.metrics.track_count);
      algo_series.points.push_back(point);
      speedups.push_back(format_fixed(point.speedup, 2));
      quality.push_back(format_fixed(point.quality_ratio, 3));
    }
    series.push_back(std::move(algo_series));
    table.add_row(speedups);
    table.add_row(quality);
  }
  std::printf("%s\n", table.to_string().c_str());

  if (!out_path.empty()) {
    std::ofstream out(out_path);
    if (!out) {
      std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
      return 1;
    }
    out << series_to_json(series, args.scale, args.seed, serial_modeled);
    std::fprintf(stderr, "scaling data written to %s\n", out_path.c_str());
  }
  return 0;
}
