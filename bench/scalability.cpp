// Extension figure: speedup scaling to 16 processors for all three
// algorithms on one mid-size circuit (the paper stops at 8 on the
// SparcCenter; its Paragon column reaches 16 for the hybrid only).
// This extrapolates the comparison the conclusions rest on: row-wise keeps
// scaling, hybrid tracks it at a gap, net-wise flattens as synchronization
// and replicated work dominate.
#include <cstdio>

#include "bench_common.h"
#include "ptwgr/circuit/suite.h"
#include "ptwgr/parallel/parallel_router.h"
#include "ptwgr/route/router.h"
#include "ptwgr/support/table.h"

int main(int argc, char** argv) {
  using namespace ptwgr;
  const auto args = bench::parse_args(argc, argv);
  const SuiteEntry entry = suite_entry("industry2", args.scale);

  RouterOptions router;
  router.seed = args.seed;
  const RoutingResult serial = route_serial(build_suite_circuit(entry), router);
  const double serial_modeled =
      serial.timings.total() * mp::CostModel::sparc_center_smp().compute_scale;

  TextTable table("Speedup scaling on industry2 (SparcCenter model)");
  std::vector<std::string> header{"algorithm"};
  const std::vector<int> procs{1, 2, 4, 8, 12, 16};
  for (const int p : procs) header.push_back(std::to_string(p) + "p");
  table.add_row(header);

  for (const auto algorithm :
       {ParallelAlgorithm::RowWise, ParallelAlgorithm::Hybrid,
        ParallelAlgorithm::NetWise}) {
    std::vector<std::string> speedups{to_string(algorithm)};
    std::vector<std::string> quality{"  (scaled tracks)"};
    for (const int p : procs) {
      ParallelOptions options;
      options.router = router;
      bench::apply_fault_args(args, options);
      const auto result =
          route_parallel(build_suite_circuit(entry), algorithm, p, options,
                         mp::CostModel::sparc_center_smp());
      speedups.push_back(
          format_fixed(serial_modeled / result.modeled_seconds(), 2));
      quality.push_back(format_fixed(
          static_cast<double>(result.metrics.track_count) /
              static_cast<double>(serial.metrics.track_count),
          3));
    }
    table.add_row(speedups);
    table.add_row(quality);
  }
  std::printf("%s\n", table.to_string().c_str());
  return 0;
}
