// Reproduces Table 3 (scaled track results of the net-wise pin partitioned
// algorithm) and Figure 5 (its speedups).  The paper attributes this
// algorithm's losses to channel-synchronization cost and the blindness of
// each processor in the switchable step (§7.2); the sync-frequency ablation
// (bench/ablation_sync) isolates that trade-off.
#include <cstdio>

#include "bench_common.h"
#include "ptwgr/eval/report.h"

int main(int argc, char** argv) {
  using namespace ptwgr;
  const auto args = bench::parse_args(argc, argv);

  ExperimentConfig config;
  config.scale = args.scale;
  config.options.router.seed = args.seed;
  config.platform = Platform::sparc_center();
  bench::apply_fault_args(args, config.options);

  const bench::ScopedBenchTrace trace(args);
  const auto runs = run_suite_experiment(ParallelAlgorithm::NetWise, config);

  std::printf("%s\n",
              render_scaled_tracks_table(
                  "Table 3: Scaled track results of net-wise pin partitioned "
                  "algorithm",
                  runs)
                  .c_str());
  std::printf("%s\n",
              render_speedup_figure(
                  "Figure 5: Speedup results of the net-wise pin partition "
                  "algorithm",
                  runs)
                  .c_str());
  if (args.comm) {
    std::printf("%s\n",
                render_comm_volume_table(
                    "Table 3 companion: communication volume (payload / "
                    "messages, all ranks)",
                    runs)
                    .c_str());
  }
  std::printf("summary: mean speedup at 8 procs %.2f, mean scaled tracks at "
              "8 procs %.3f\n",
              mean_speedup_at(runs, 8), mean_scaled_tracks_at(runs, 8));
  return 0;
}
