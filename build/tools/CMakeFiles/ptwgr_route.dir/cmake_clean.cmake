file(REMOVE_RECURSE
  "CMakeFiles/ptwgr_route.dir/ptwgr_route.cpp.o"
  "CMakeFiles/ptwgr_route.dir/ptwgr_route.cpp.o.d"
  "ptwgr_route"
  "ptwgr_route.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ptwgr_route.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
