# Empty compiler generated dependencies file for ptwgr_route.
# This may be replaced when dependencies are built.
