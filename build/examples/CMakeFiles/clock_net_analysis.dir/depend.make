# Empty dependencies file for clock_net_analysis.
# This may be replaced when dependencies are built.
