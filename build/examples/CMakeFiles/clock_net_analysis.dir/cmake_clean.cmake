file(REMOVE_RECURSE
  "CMakeFiles/clock_net_analysis.dir/clock_net_analysis.cpp.o"
  "CMakeFiles/clock_net_analysis.dir/clock_net_analysis.cpp.o.d"
  "clock_net_analysis"
  "clock_net_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clock_net_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
