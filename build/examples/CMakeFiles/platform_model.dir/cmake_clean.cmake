file(REMOVE_RECURSE
  "CMakeFiles/platform_model.dir/platform_model.cpp.o"
  "CMakeFiles/platform_model.dir/platform_model.cpp.o.d"
  "platform_model"
  "platform_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/platform_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
