# Empty compiler generated dependencies file for platform_model.
# This may be replaced when dependencies are built.
