file(REMOVE_RECURSE
  "CMakeFiles/parallel_routing.dir/parallel_routing.cpp.o"
  "CMakeFiles/parallel_routing.dir/parallel_routing.cpp.o.d"
  "parallel_routing"
  "parallel_routing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parallel_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
