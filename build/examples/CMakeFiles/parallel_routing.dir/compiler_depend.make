# Empty compiler generated dependencies file for parallel_routing.
# This may be replaced when dependencies are built.
