file(REMOVE_RECURSE
  "CMakeFiles/circuit_io.dir/circuit_io.cpp.o"
  "CMakeFiles/circuit_io.dir/circuit_io.cpp.o.d"
  "circuit_io"
  "circuit_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/circuit_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
