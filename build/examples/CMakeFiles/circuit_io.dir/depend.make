# Empty dependencies file for circuit_io.
# This may be replaced when dependencies are built.
