file(REMOVE_RECURSE
  "CMakeFiles/table2_fig4_rowwise.dir/table2_fig4_rowwise.cpp.o"
  "CMakeFiles/table2_fig4_rowwise.dir/table2_fig4_rowwise.cpp.o.d"
  "table2_fig4_rowwise"
  "table2_fig4_rowwise.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_fig4_rowwise.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
