# Empty dependencies file for table2_fig4_rowwise.
# This may be replaced when dependencies are built.
