file(REMOVE_RECURSE
  "CMakeFiles/baseline_maze.dir/baseline_maze.cpp.o"
  "CMakeFiles/baseline_maze.dir/baseline_maze.cpp.o.d"
  "baseline_maze"
  "baseline_maze.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baseline_maze.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
