# Empty compiler generated dependencies file for baseline_maze.
# This may be replaced when dependencies are built.
