file(REMOVE_RECURSE
  "CMakeFiles/table4_fig6_hybrid.dir/table4_fig6_hybrid.cpp.o"
  "CMakeFiles/table4_fig6_hybrid.dir/table4_fig6_hybrid.cpp.o.d"
  "table4_fig6_hybrid"
  "table4_fig6_hybrid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_fig6_hybrid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
