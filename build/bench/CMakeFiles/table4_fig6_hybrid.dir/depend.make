# Empty dependencies file for table4_fig6_hybrid.
# This may be replaced when dependencies are built.
