file(REMOVE_RECURSE
  "CMakeFiles/table5_platforms.dir/table5_platforms.cpp.o"
  "CMakeFiles/table5_platforms.dir/table5_platforms.cpp.o.d"
  "table5_platforms"
  "table5_platforms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_platforms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
