# Empty compiler generated dependencies file for table5_platforms.
# This may be replaced when dependencies are built.
