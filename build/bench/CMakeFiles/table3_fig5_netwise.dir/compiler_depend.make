# Empty compiler generated dependencies file for table3_fig5_netwise.
# This may be replaced when dependencies are built.
