file(REMOVE_RECURSE
  "CMakeFiles/table3_fig5_netwise.dir/table3_fig5_netwise.cpp.o"
  "CMakeFiles/table3_fig5_netwise.dir/table3_fig5_netwise.cpp.o.d"
  "table3_fig5_netwise"
  "table3_fig5_netwise.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_fig5_netwise.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
