# Empty compiler generated dependencies file for ablation_pinweight.
# This may be replaced when dependencies are built.
