file(REMOVE_RECURSE
  "CMakeFiles/ablation_pinweight.dir/ablation_pinweight.cpp.o"
  "CMakeFiles/ablation_pinweight.dir/ablation_pinweight.cpp.o.d"
  "ablation_pinweight"
  "ablation_pinweight.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_pinweight.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
