file(REMOVE_RECURSE
  "CMakeFiles/ablation_netpartition.dir/ablation_netpartition.cpp.o"
  "CMakeFiles/ablation_netpartition.dir/ablation_netpartition.cpp.o.d"
  "ablation_netpartition"
  "ablation_netpartition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_netpartition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
