# Empty compiler generated dependencies file for ablation_netpartition.
# This may be replaced when dependencies are built.
