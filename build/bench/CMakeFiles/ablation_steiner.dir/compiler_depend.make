# Empty compiler generated dependencies file for ablation_steiner.
# This may be replaced when dependencies are built.
