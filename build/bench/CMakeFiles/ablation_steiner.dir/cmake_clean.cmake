file(REMOVE_RECURSE
  "CMakeFiles/ablation_steiner.dir/ablation_steiner.cpp.o"
  "CMakeFiles/ablation_steiner.dir/ablation_steiner.cpp.o.d"
  "ablation_steiner"
  "ablation_steiner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_steiner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
