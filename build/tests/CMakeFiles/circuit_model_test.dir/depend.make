# Empty dependencies file for circuit_model_test.
# This may be replaced when dependencies are built.
