file(REMOVE_RECURSE
  "CMakeFiles/circuit_model_test.dir/circuit_model_test.cpp.o"
  "CMakeFiles/circuit_model_test.dir/circuit_model_test.cpp.o.d"
  "circuit_model_test"
  "circuit_model_test.pdb"
  "circuit_model_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/circuit_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
