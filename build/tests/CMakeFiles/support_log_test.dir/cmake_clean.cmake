file(REMOVE_RECURSE
  "CMakeFiles/support_log_test.dir/support_log_test.cpp.o"
  "CMakeFiles/support_log_test.dir/support_log_test.cpp.o.d"
  "support_log_test"
  "support_log_test.pdb"
  "support_log_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/support_log_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
