file(REMOVE_RECURSE
  "CMakeFiles/route_metrics_test.dir/route_metrics_test.cpp.o"
  "CMakeFiles/route_metrics_test.dir/route_metrics_test.cpp.o.d"
  "route_metrics_test"
  "route_metrics_test.pdb"
  "route_metrics_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/route_metrics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
