# Empty dependencies file for route_metrics_test.
# This may be replaced when dependencies are built.
