file(REMOVE_RECURSE
  "CMakeFiles/route_switchable_test.dir/route_switchable_test.cpp.o"
  "CMakeFiles/route_switchable_test.dir/route_switchable_test.cpp.o.d"
  "route_switchable_test"
  "route_switchable_test.pdb"
  "route_switchable_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/route_switchable_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
