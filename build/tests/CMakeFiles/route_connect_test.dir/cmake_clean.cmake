file(REMOVE_RECURSE
  "CMakeFiles/route_connect_test.dir/route_connect_test.cpp.o"
  "CMakeFiles/route_connect_test.dir/route_connect_test.cpp.o.d"
  "route_connect_test"
  "route_connect_test.pdb"
  "route_connect_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/route_connect_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
