# Empty compiler generated dependencies file for circuit_io_test.
# This may be replaced when dependencies are built.
