file(REMOVE_RECURSE
  "CMakeFiles/circuit_io_test.dir/circuit_io_test.cpp.o"
  "CMakeFiles/circuit_io_test.dir/circuit_io_test.cpp.o.d"
  "circuit_io_test"
  "circuit_io_test.pdb"
  "circuit_io_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/circuit_io_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
