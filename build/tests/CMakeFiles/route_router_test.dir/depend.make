# Empty dependencies file for route_router_test.
# This may be replaced when dependencies are built.
