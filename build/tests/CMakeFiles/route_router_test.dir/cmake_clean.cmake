file(REMOVE_RECURSE
  "CMakeFiles/route_router_test.dir/route_router_test.cpp.o"
  "CMakeFiles/route_router_test.dir/route_router_test.cpp.o.d"
  "route_router_test"
  "route_router_test.pdb"
  "route_router_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/route_router_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
