# Empty compiler generated dependencies file for circuit_stats_test.
# This may be replaced when dependencies are built.
