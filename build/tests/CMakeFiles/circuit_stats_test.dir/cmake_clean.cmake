file(REMOVE_RECURSE
  "CMakeFiles/circuit_stats_test.dir/circuit_stats_test.cpp.o"
  "CMakeFiles/circuit_stats_test.dir/circuit_stats_test.cpp.o.d"
  "circuit_stats_test"
  "circuit_stats_test.pdb"
  "circuit_stats_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/circuit_stats_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
