file(REMOVE_RECURSE
  "CMakeFiles/channel_report_test.dir/channel_report_test.cpp.o"
  "CMakeFiles/channel_report_test.dir/channel_report_test.cpp.o.d"
  "channel_report_test"
  "channel_report_test.pdb"
  "channel_report_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/channel_report_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
