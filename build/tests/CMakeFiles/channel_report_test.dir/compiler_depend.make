# Empty compiler generated dependencies file for channel_report_test.
# This may be replaced when dependencies are built.
