file(REMOVE_RECURSE
  "CMakeFiles/parallel_algorithms_test.dir/parallel_algorithms_test.cpp.o"
  "CMakeFiles/parallel_algorithms_test.dir/parallel_algorithms_test.cpp.o.d"
  "parallel_algorithms_test"
  "parallel_algorithms_test.pdb"
  "parallel_algorithms_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parallel_algorithms_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
