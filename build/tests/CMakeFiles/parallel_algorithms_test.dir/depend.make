# Empty dependencies file for parallel_algorithms_test.
# This may be replaced when dependencies are built.
