file(REMOVE_RECURSE
  "CMakeFiles/route_mst_test.dir/route_mst_test.cpp.o"
  "CMakeFiles/route_mst_test.dir/route_mst_test.cpp.o.d"
  "route_mst_test"
  "route_mst_test.pdb"
  "route_mst_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/route_mst_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
