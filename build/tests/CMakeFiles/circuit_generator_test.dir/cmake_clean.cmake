file(REMOVE_RECURSE
  "CMakeFiles/circuit_generator_test.dir/circuit_generator_test.cpp.o"
  "CMakeFiles/circuit_generator_test.dir/circuit_generator_test.cpp.o.d"
  "circuit_generator_test"
  "circuit_generator_test.pdb"
  "circuit_generator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/circuit_generator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
