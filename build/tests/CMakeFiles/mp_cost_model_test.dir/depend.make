# Empty dependencies file for mp_cost_model_test.
# This may be replaced when dependencies are built.
