file(REMOVE_RECURSE
  "CMakeFiles/mp_cost_model_test.dir/mp_cost_model_test.cpp.o"
  "CMakeFiles/mp_cost_model_test.dir/mp_cost_model_test.cpp.o.d"
  "mp_cost_model_test"
  "mp_cost_model_test.pdb"
  "mp_cost_model_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mp_cost_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
