# Empty dependencies file for mp_vtime_test.
# This may be replaced when dependencies are built.
