file(REMOVE_RECURSE
  "CMakeFiles/mp_vtime_test.dir/mp_vtime_test.cpp.o"
  "CMakeFiles/mp_vtime_test.dir/mp_vtime_test.cpp.o.d"
  "mp_vtime_test"
  "mp_vtime_test.pdb"
  "mp_vtime_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mp_vtime_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
