file(REMOVE_RECURSE
  "CMakeFiles/baseline_maze_test.dir/baseline_maze_test.cpp.o"
  "CMakeFiles/baseline_maze_test.dir/baseline_maze_test.cpp.o.d"
  "baseline_maze_test"
  "baseline_maze_test.pdb"
  "baseline_maze_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baseline_maze_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
