# Empty compiler generated dependencies file for baseline_maze_test.
# This may be replaced when dependencies are built.
