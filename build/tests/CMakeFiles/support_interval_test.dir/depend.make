# Empty dependencies file for support_interval_test.
# This may be replaced when dependencies are built.
