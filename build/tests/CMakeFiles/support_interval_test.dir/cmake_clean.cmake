file(REMOVE_RECURSE
  "CMakeFiles/support_interval_test.dir/support_interval_test.cpp.o"
  "CMakeFiles/support_interval_test.dir/support_interval_test.cpp.o.d"
  "support_interval_test"
  "support_interval_test.pdb"
  "support_interval_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/support_interval_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
