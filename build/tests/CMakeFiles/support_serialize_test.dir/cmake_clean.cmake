file(REMOVE_RECURSE
  "CMakeFiles/support_serialize_test.dir/support_serialize_test.cpp.o"
  "CMakeFiles/support_serialize_test.dir/support_serialize_test.cpp.o.d"
  "support_serialize_test"
  "support_serialize_test.pdb"
  "support_serialize_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/support_serialize_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
