# Empty dependencies file for support_serialize_test.
# This may be replaced when dependencies are built.
