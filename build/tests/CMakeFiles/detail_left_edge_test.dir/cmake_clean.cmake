file(REMOVE_RECURSE
  "CMakeFiles/detail_left_edge_test.dir/detail_left_edge_test.cpp.o"
  "CMakeFiles/detail_left_edge_test.dir/detail_left_edge_test.cpp.o.d"
  "detail_left_edge_test"
  "detail_left_edge_test.pdb"
  "detail_left_edge_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/detail_left_edge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
