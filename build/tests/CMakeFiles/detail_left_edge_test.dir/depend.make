# Empty dependencies file for detail_left_edge_test.
# This may be replaced when dependencies are built.
