# Empty compiler generated dependencies file for route_steiner_test.
# This may be replaced when dependencies are built.
