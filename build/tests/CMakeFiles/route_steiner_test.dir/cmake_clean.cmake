file(REMOVE_RECURSE
  "CMakeFiles/route_steiner_test.dir/route_steiner_test.cpp.o"
  "CMakeFiles/route_steiner_test.dir/route_steiner_test.cpp.o.d"
  "route_steiner_test"
  "route_steiner_test.pdb"
  "route_steiner_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/route_steiner_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
