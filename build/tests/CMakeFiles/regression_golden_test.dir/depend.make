# Empty dependencies file for regression_golden_test.
# This may be replaced when dependencies are built.
