# Empty dependencies file for route_feedthrough_test.
# This may be replaced when dependencies are built.
