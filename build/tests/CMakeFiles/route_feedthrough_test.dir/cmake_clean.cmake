file(REMOVE_RECURSE
  "CMakeFiles/route_feedthrough_test.dir/route_feedthrough_test.cpp.o"
  "CMakeFiles/route_feedthrough_test.dir/route_feedthrough_test.cpp.o.d"
  "route_feedthrough_test"
  "route_feedthrough_test.pdb"
  "route_feedthrough_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/route_feedthrough_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
