file(REMOVE_RECURSE
  "CMakeFiles/parallel_shapes_test.dir/parallel_shapes_test.cpp.o"
  "CMakeFiles/parallel_shapes_test.dir/parallel_shapes_test.cpp.o.d"
  "parallel_shapes_test"
  "parallel_shapes_test.pdb"
  "parallel_shapes_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parallel_shapes_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
