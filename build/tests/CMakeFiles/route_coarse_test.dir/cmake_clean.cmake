file(REMOVE_RECURSE
  "CMakeFiles/route_coarse_test.dir/route_coarse_test.cpp.o"
  "CMakeFiles/route_coarse_test.dir/route_coarse_test.cpp.o.d"
  "route_coarse_test"
  "route_coarse_test.pdb"
  "route_coarse_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/route_coarse_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
