# Empty dependencies file for route_coarse_test.
# This may be replaced when dependencies are built.
