# Empty dependencies file for parallel_fakepins_test.
# This may be replaced when dependencies are built.
