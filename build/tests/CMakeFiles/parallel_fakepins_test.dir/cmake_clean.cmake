file(REMOVE_RECURSE
  "CMakeFiles/parallel_fakepins_test.dir/parallel_fakepins_test.cpp.o"
  "CMakeFiles/parallel_fakepins_test.dir/parallel_fakepins_test.cpp.o.d"
  "parallel_fakepins_test"
  "parallel_fakepins_test.pdb"
  "parallel_fakepins_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parallel_fakepins_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
