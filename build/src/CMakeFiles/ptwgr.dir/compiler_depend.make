# Empty compiler generated dependencies file for ptwgr.
# This may be replaced when dependencies are built.
