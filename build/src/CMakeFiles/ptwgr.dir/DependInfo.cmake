
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ptwgr/baseline/maze_router.cpp" "src/CMakeFiles/ptwgr.dir/ptwgr/baseline/maze_router.cpp.o" "gcc" "src/CMakeFiles/ptwgr.dir/ptwgr/baseline/maze_router.cpp.o.d"
  "/root/repo/src/ptwgr/circuit/circuit.cpp" "src/CMakeFiles/ptwgr.dir/ptwgr/circuit/circuit.cpp.o" "gcc" "src/CMakeFiles/ptwgr.dir/ptwgr/circuit/circuit.cpp.o.d"
  "/root/repo/src/ptwgr/circuit/circuit_stats.cpp" "src/CMakeFiles/ptwgr.dir/ptwgr/circuit/circuit_stats.cpp.o" "gcc" "src/CMakeFiles/ptwgr.dir/ptwgr/circuit/circuit_stats.cpp.o.d"
  "/root/repo/src/ptwgr/circuit/generator.cpp" "src/CMakeFiles/ptwgr.dir/ptwgr/circuit/generator.cpp.o" "gcc" "src/CMakeFiles/ptwgr.dir/ptwgr/circuit/generator.cpp.o.d"
  "/root/repo/src/ptwgr/circuit/io.cpp" "src/CMakeFiles/ptwgr.dir/ptwgr/circuit/io.cpp.o" "gcc" "src/CMakeFiles/ptwgr.dir/ptwgr/circuit/io.cpp.o.d"
  "/root/repo/src/ptwgr/circuit/suite.cpp" "src/CMakeFiles/ptwgr.dir/ptwgr/circuit/suite.cpp.o" "gcc" "src/CMakeFiles/ptwgr.dir/ptwgr/circuit/suite.cpp.o.d"
  "/root/repo/src/ptwgr/detail/left_edge.cpp" "src/CMakeFiles/ptwgr.dir/ptwgr/detail/left_edge.cpp.o" "gcc" "src/CMakeFiles/ptwgr.dir/ptwgr/detail/left_edge.cpp.o.d"
  "/root/repo/src/ptwgr/eval/channel_report.cpp" "src/CMakeFiles/ptwgr.dir/ptwgr/eval/channel_report.cpp.o" "gcc" "src/CMakeFiles/ptwgr.dir/ptwgr/eval/channel_report.cpp.o.d"
  "/root/repo/src/ptwgr/eval/experiment.cpp" "src/CMakeFiles/ptwgr.dir/ptwgr/eval/experiment.cpp.o" "gcc" "src/CMakeFiles/ptwgr.dir/ptwgr/eval/experiment.cpp.o.d"
  "/root/repo/src/ptwgr/eval/platform.cpp" "src/CMakeFiles/ptwgr.dir/ptwgr/eval/platform.cpp.o" "gcc" "src/CMakeFiles/ptwgr.dir/ptwgr/eval/platform.cpp.o.d"
  "/root/repo/src/ptwgr/eval/report.cpp" "src/CMakeFiles/ptwgr.dir/ptwgr/eval/report.cpp.o" "gcc" "src/CMakeFiles/ptwgr.dir/ptwgr/eval/report.cpp.o.d"
  "/root/repo/src/ptwgr/mp/communicator.cpp" "src/CMakeFiles/ptwgr.dir/ptwgr/mp/communicator.cpp.o" "gcc" "src/CMakeFiles/ptwgr.dir/ptwgr/mp/communicator.cpp.o.d"
  "/root/repo/src/ptwgr/mp/cost_model.cpp" "src/CMakeFiles/ptwgr.dir/ptwgr/mp/cost_model.cpp.o" "gcc" "src/CMakeFiles/ptwgr.dir/ptwgr/mp/cost_model.cpp.o.d"
  "/root/repo/src/ptwgr/mp/mailbox.cpp" "src/CMakeFiles/ptwgr.dir/ptwgr/mp/mailbox.cpp.o" "gcc" "src/CMakeFiles/ptwgr.dir/ptwgr/mp/mailbox.cpp.o.d"
  "/root/repo/src/ptwgr/mp/runtime.cpp" "src/CMakeFiles/ptwgr.dir/ptwgr/mp/runtime.cpp.o" "gcc" "src/CMakeFiles/ptwgr.dir/ptwgr/mp/runtime.cpp.o.d"
  "/root/repo/src/ptwgr/parallel/common.cpp" "src/CMakeFiles/ptwgr.dir/ptwgr/parallel/common.cpp.o" "gcc" "src/CMakeFiles/ptwgr.dir/ptwgr/parallel/common.cpp.o.d"
  "/root/repo/src/ptwgr/parallel/fake_pins.cpp" "src/CMakeFiles/ptwgr.dir/ptwgr/parallel/fake_pins.cpp.o" "gcc" "src/CMakeFiles/ptwgr.dir/ptwgr/parallel/fake_pins.cpp.o.d"
  "/root/repo/src/ptwgr/parallel/hybrid.cpp" "src/CMakeFiles/ptwgr.dir/ptwgr/parallel/hybrid.cpp.o" "gcc" "src/CMakeFiles/ptwgr.dir/ptwgr/parallel/hybrid.cpp.o.d"
  "/root/repo/src/ptwgr/parallel/netwise.cpp" "src/CMakeFiles/ptwgr.dir/ptwgr/parallel/netwise.cpp.o" "gcc" "src/CMakeFiles/ptwgr.dir/ptwgr/parallel/netwise.cpp.o.d"
  "/root/repo/src/ptwgr/parallel/parallel_router.cpp" "src/CMakeFiles/ptwgr.dir/ptwgr/parallel/parallel_router.cpp.o" "gcc" "src/CMakeFiles/ptwgr.dir/ptwgr/parallel/parallel_router.cpp.o.d"
  "/root/repo/src/ptwgr/parallel/rowwise.cpp" "src/CMakeFiles/ptwgr.dir/ptwgr/parallel/rowwise.cpp.o" "gcc" "src/CMakeFiles/ptwgr.dir/ptwgr/parallel/rowwise.cpp.o.d"
  "/root/repo/src/ptwgr/parallel/subcircuit.cpp" "src/CMakeFiles/ptwgr.dir/ptwgr/parallel/subcircuit.cpp.o" "gcc" "src/CMakeFiles/ptwgr.dir/ptwgr/parallel/subcircuit.cpp.o.d"
  "/root/repo/src/ptwgr/partition/net_partition.cpp" "src/CMakeFiles/ptwgr.dir/ptwgr/partition/net_partition.cpp.o" "gcc" "src/CMakeFiles/ptwgr.dir/ptwgr/partition/net_partition.cpp.o.d"
  "/root/repo/src/ptwgr/partition/row_partition.cpp" "src/CMakeFiles/ptwgr.dir/ptwgr/partition/row_partition.cpp.o" "gcc" "src/CMakeFiles/ptwgr.dir/ptwgr/partition/row_partition.cpp.o.d"
  "/root/repo/src/ptwgr/route/coarse.cpp" "src/CMakeFiles/ptwgr.dir/ptwgr/route/coarse.cpp.o" "gcc" "src/CMakeFiles/ptwgr.dir/ptwgr/route/coarse.cpp.o.d"
  "/root/repo/src/ptwgr/route/connect.cpp" "src/CMakeFiles/ptwgr.dir/ptwgr/route/connect.cpp.o" "gcc" "src/CMakeFiles/ptwgr.dir/ptwgr/route/connect.cpp.o.d"
  "/root/repo/src/ptwgr/route/feedthrough.cpp" "src/CMakeFiles/ptwgr.dir/ptwgr/route/feedthrough.cpp.o" "gcc" "src/CMakeFiles/ptwgr.dir/ptwgr/route/feedthrough.cpp.o.d"
  "/root/repo/src/ptwgr/route/grid.cpp" "src/CMakeFiles/ptwgr.dir/ptwgr/route/grid.cpp.o" "gcc" "src/CMakeFiles/ptwgr.dir/ptwgr/route/grid.cpp.o.d"
  "/root/repo/src/ptwgr/route/metrics.cpp" "src/CMakeFiles/ptwgr.dir/ptwgr/route/metrics.cpp.o" "gcc" "src/CMakeFiles/ptwgr.dir/ptwgr/route/metrics.cpp.o.d"
  "/root/repo/src/ptwgr/route/mst.cpp" "src/CMakeFiles/ptwgr.dir/ptwgr/route/mst.cpp.o" "gcc" "src/CMakeFiles/ptwgr.dir/ptwgr/route/mst.cpp.o.d"
  "/root/repo/src/ptwgr/route/router.cpp" "src/CMakeFiles/ptwgr.dir/ptwgr/route/router.cpp.o" "gcc" "src/CMakeFiles/ptwgr.dir/ptwgr/route/router.cpp.o.d"
  "/root/repo/src/ptwgr/route/steiner.cpp" "src/CMakeFiles/ptwgr.dir/ptwgr/route/steiner.cpp.o" "gcc" "src/CMakeFiles/ptwgr.dir/ptwgr/route/steiner.cpp.o.d"
  "/root/repo/src/ptwgr/route/switchable.cpp" "src/CMakeFiles/ptwgr.dir/ptwgr/route/switchable.cpp.o" "gcc" "src/CMakeFiles/ptwgr.dir/ptwgr/route/switchable.cpp.o.d"
  "/root/repo/src/ptwgr/support/interval.cpp" "src/CMakeFiles/ptwgr.dir/ptwgr/support/interval.cpp.o" "gcc" "src/CMakeFiles/ptwgr.dir/ptwgr/support/interval.cpp.o.d"
  "/root/repo/src/ptwgr/support/log.cpp" "src/CMakeFiles/ptwgr.dir/ptwgr/support/log.cpp.o" "gcc" "src/CMakeFiles/ptwgr.dir/ptwgr/support/log.cpp.o.d"
  "/root/repo/src/ptwgr/support/rng.cpp" "src/CMakeFiles/ptwgr.dir/ptwgr/support/rng.cpp.o" "gcc" "src/CMakeFiles/ptwgr.dir/ptwgr/support/rng.cpp.o.d"
  "/root/repo/src/ptwgr/support/serialize.cpp" "src/CMakeFiles/ptwgr.dir/ptwgr/support/serialize.cpp.o" "gcc" "src/CMakeFiles/ptwgr.dir/ptwgr/support/serialize.cpp.o.d"
  "/root/repo/src/ptwgr/support/stats.cpp" "src/CMakeFiles/ptwgr.dir/ptwgr/support/stats.cpp.o" "gcc" "src/CMakeFiles/ptwgr.dir/ptwgr/support/stats.cpp.o.d"
  "/root/repo/src/ptwgr/support/table.cpp" "src/CMakeFiles/ptwgr.dir/ptwgr/support/table.cpp.o" "gcc" "src/CMakeFiles/ptwgr.dir/ptwgr/support/table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
