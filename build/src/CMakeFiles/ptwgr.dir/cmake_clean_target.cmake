file(REMOVE_RECURSE
  "libptwgr.a"
)
