// Quickstart: build a small standard-cell circuit by hand, route it with
// the serial TWGR pipeline, and inspect the result.
//
//   $ ./quickstart
//
// This walks the full public API surface a new user needs: CircuitBuilder,
// route_serial, RoutingMetrics, and verify_routing.
#include <cstdio>

#include "ptwgr/circuit/builder.h"
#include "ptwgr/route/router.h"

int main() {
  using namespace ptwgr;

  // A 3-row, 9-cell circuit with four nets.  Pin sides matter: `Both` marks
  // electrically equivalent pins (reachable from either channel), which is
  // what makes a wire "switchable" in the optimization step.
  CircuitBuilder builder;
  const RowId r0 = builder.add_row();
  const RowId r1 = builder.add_row();
  const RowId r2 = builder.add_row();

  CellId cells[3][3];
  for (int row = 0; row < 3; ++row) {
    const RowId rid = row == 0 ? r0 : (row == 1 ? r1 : r2);
    for (int i = 0; i < 3; ++i) {
      cells[row][i] = builder.add_cell(rid, 10);
    }
  }

  // Net A: spans all three rows — will need feedthroughs.
  const NetId net_a = builder.add_net();
  builder.add_pin(cells[0][0], net_a, 2, PinSide::Top);
  builder.add_pin(cells[2][2], net_a, 5, PinSide::Bottom);

  // Net B: a same-row net with equivalent pins — a switchable segment.
  const NetId net_b = builder.add_net();
  builder.add_pin(cells[1][0], net_b, 1, PinSide::Both);
  builder.add_pin(cells[1][2], net_b, 8, PinSide::Both);

  // Net C: adjacent rows, fixed sides.
  const NetId net_c = builder.add_net();
  builder.add_pin(cells[0][1], net_c, 4, PinSide::Top);
  builder.add_pin(cells[1][1], net_c, 4, PinSide::Bottom);

  // Net D: three pins.
  const NetId net_d = builder.add_net();
  builder.add_pin(cells[0][2], net_d, 0, PinSide::Both);
  builder.add_pin(cells[1][2], net_d, 0, PinSide::Both);
  builder.add_pin(cells[2][0], net_d, 9, PinSide::Top);

  Circuit circuit = std::move(builder).build(/*spacing=*/2);
  std::printf("circuit: %zu rows, %zu cells, %zu nets, %zu pins, core "
              "width %lld\n",
              circuit.num_rows(), circuit.num_cells(), circuit.num_nets(),
              circuit.num_pins(),
              static_cast<long long>(circuit.core_width()));

  // Route.  Options control the grid granularity and the randomized
  // improvement passes; the seed makes runs reproducible.
  RouterOptions options;
  options.seed = 42;
  const RoutingResult result = route_serial(std::move(circuit), options);

  std::printf("routed: %s\n", result.metrics.to_string().c_str());
  std::printf("channel densities:");
  for (const auto d : result.metrics.channel_density) {
    std::printf(" %lld", static_cast<long long>(d));
  }
  std::printf("\n");

  std::printf("wires:\n");
  for (const Wire& wire : result.wires) {
    std::printf("  net %u  channel %u  [%lld, %lld]%s\n", wire.net.value(),
                wire.channel, static_cast<long long>(wire.lo),
                static_cast<long long>(wire.hi),
                wire.switchable ? "  (switchable)" : "");
  }

  const auto violations = verify_routing(result.circuit, result.wires);
  if (violations.empty()) {
    std::printf("verification: all nets connected\n");
    return 0;
  }
  for (const auto& violation : violations) {
    std::printf("VIOLATION: %s\n", violation.c_str());
  }
  return 1;
}
