// Platform-model demo: the same routing run under different machine models.
//
// The runtime's virtual clocks charge measured per-rank compute (scaled by
// the platform's relative core speed) plus an α–β cost per message, which is
// how this reproduction measures parallel time on a single-core host (see
// DESIGN.md §2).  This example makes the model tangible: one algorithm, one
// circuit, three platforms.
//
//   $ ./platform_model
#include <cstdio>

#include "ptwgr/circuit/suite.h"
#include "ptwgr/eval/platform.h"
#include "ptwgr/parallel/parallel_router.h"
#include "ptwgr/route/router.h"
#include "ptwgr/support/table.h"

int main() {
  using namespace ptwgr;
  const SuiteEntry entry = suite_entry("primary2", 0.5);
  const RoutingResult serial = route_serial(build_suite_circuit(entry));

  TextTable table("net-wise algorithm, 8 ranks, same seed, three platforms");
  table.add_row({"platform", "alpha (us)", "modeled time (s)", "speedup",
                 "tracks"});
  // Frequent synchronization makes the message-cost differences visible.
  ParallelOptions options;
  options.coarse_sync_period = 64;
  options.switch_sync_period = 64;
  for (const Platform& platform :
       {Platform::ideal(), Platform::sparc_center(), Platform::paragon()}) {
    const auto result =
        route_parallel(build_suite_circuit(entry), ParallelAlgorithm::NetWise,
                       8, options, platform.cost);
    const double serial_modeled =
        serial.timings.total() * platform.cost.compute_scale;
    table.add_row({platform.name,
                   format_fixed(platform.cost.latency_s * 1e6, 0),
                   format_fixed(result.modeled_seconds(), 3),
                   format_fixed(serial_modeled / result.modeled_seconds(), 2),
                   format_grouped(result.metrics.track_count)});
  }
  std::printf("%s", table.to_string().c_str());
  std::printf("\nQuality is platform-independent (same seed, same "
              "decisions); only the modeled time changes.  The Paragon's "
              "higher per-message latency penalizes the sync-heavy net-wise "
              "algorithm hardest — the paper's Table 5 effect.\n");
  return 0;
}
