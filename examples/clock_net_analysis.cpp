// Giant-clock-net analysis: the scenario behind the paper's pin-number-
// weight partition (§5).  AVQ-LARGE carries a >3000-pin clock line while
// 99% of its nets are small; naive net partitions leave whichever rank owns
// the clock net as the straggler of the Steiner phase.  This example builds
// such a circuit, shows the net-degree histogram, and compares partition
// schemes on the resulting load balance.
//
//   $ ./clock_net_analysis
#include <cstdio>

#include "ptwgr/circuit/circuit_stats.h"
#include "ptwgr/circuit/generator.h"
#include "ptwgr/partition/net_partition.h"
#include "ptwgr/support/stats.h"
#include "ptwgr/support/table.h"

int main() {
  using namespace ptwgr;
  constexpr int kRanks = 8;

  GeneratorConfig config;
  config.seed = 99;
  config.num_rows = 20;
  config.num_cells = 4000;
  config.num_nets = 4200;
  config.giant_net_pins = {1500, 400};  // clock line + a large reset net
  const Circuit circuit = generate_circuit(config);

  const CircuitStats stats = compute_stats(circuit);
  std::printf("circuit: %s\n", stats.to_string().c_str());
  std::printf("%.1f%% of nets have <= 5 pins, yet the largest has %zu\n\n",
              stats.fraction_nets_small * 100.0, stats.max_pins_on_net);

  Histogram histogram({2, 3, 5, 10, 50, 500});
  for (const Net& net : circuit.nets()) {
    histogram.add(net.pins.size());
  }
  std::printf("pins-per-net histogram:\n%s\n", histogram.to_string().c_str());

  const RowPartition rows = partition_rows(circuit, kRanks);
  TextTable table("net partition load balance across 8 ranks");
  table.add_row({"scheme", "pin imbalance", "Steiner-work (k^2) imbalance"});
  for (const auto scheme :
       {NetPartitionScheme::Center, NetPartitionScheme::Locus,
        NetPartitionScheme::Density, NetPartitionScheme::PinNumberWeight}) {
    NetPartitionOptions options;
    options.scheme = scheme;
    const NetPartition partition =
        partition_nets(circuit, kRanks, options, &rows);
    std::vector<double> work(kRanks, 0.0);
    for (std::size_t n = 0; n < circuit.num_nets(); ++n) {
      const auto k = static_cast<double>(
          circuit.net(NetId{static_cast<std::uint32_t>(n)}).pins.size());
      work[static_cast<std::size_t>(partition.owner[n])] += k * k;
    }
    table.add_row({to_string(scheme),
                   format_fixed(load_imbalance(partition.pin_load), 2),
                   format_fixed(load_imbalance(work), 2)});
  }
  std::printf("%s", table.to_string().c_str());
  std::printf("\n(pin-number-weight deals giant nets round-robin, so no "
              "rank holds both clock-class nets)\n");
  return 0;
}
