// Parallel routing demo: route one synthetic circuit with all three
// parallel algorithms across processor counts and compare quality and
// modeled runtime against the serial baseline — a miniature of the paper's
// entire evaluation in one program.
//
//   $ ./parallel_routing [circuit-name] [scale]
//   $ ./parallel_routing biomed 0.5
#include <cstdio>
#include <cstdlib>

#include "ptwgr/circuit/suite.h"
#include "ptwgr/parallel/parallel_router.h"
#include "ptwgr/route/router.h"
#include "ptwgr/support/table.h"

int main(int argc, char** argv) {
  using namespace ptwgr;
  const std::string name = argc > 1 ? argv[1] : "biomed";
  const double scale = argc > 2 ? std::atof(argv[2]) : 0.5;

  const SuiteEntry entry = suite_entry(name, scale);
  {
    const Circuit circuit = build_suite_circuit(entry);
    std::printf("%s @ scale %.2f: %zu rows, %zu cells, %zu nets, %zu pins\n",
                entry.name.c_str(), scale, circuit.num_rows(),
                circuit.num_cells(), circuit.num_nets(), circuit.num_pins());
  }

  const RoutingResult serial = route_serial(build_suite_circuit(entry));
  std::printf("serial baseline: %s (routing time %.3f s measured)\n\n",
              serial.metrics.to_string().c_str(), serial.timings.total());
  const double serial_modeled =
      serial.timings.total() * mp::CostModel::sparc_center_smp().compute_scale;

  TextTable table("parallel algorithms vs serial (SparcCenter 1000 model)");
  table.add_row({"algorithm", "procs", "tracks", "scaled", "modeled time (s)",
                 "speedup"});
  for (const auto algorithm :
       {ParallelAlgorithm::RowWise, ParallelAlgorithm::NetWise,
        ParallelAlgorithm::Hybrid}) {
    for (const int procs : {2, 4, 8}) {
      const auto result =
          route_parallel(build_suite_circuit(entry), algorithm, procs, {},
                         mp::CostModel::sparc_center_smp());
      table.add_row(
          {to_string(algorithm), std::to_string(procs),
           format_grouped(result.metrics.track_count),
           format_fixed(static_cast<double>(result.metrics.track_count) /
                            static_cast<double>(serial.metrics.track_count),
                        3),
           format_fixed(result.modeled_seconds(), 2),
           format_fixed(serial_modeled / result.modeled_seconds(), 2)});
    }
  }
  std::printf("%s", table.to_string().c_str());
  std::printf("\nExpected shape (paper): row-wise fastest, hybrid best "
              "quality, net-wise slowest.\n");
  return 0;
}
