// Circuit interchange demo: generate a synthetic circuit, persist it in the
// PTWGR text format, reload it, and prove the round-trip routes identically.
//
//   $ ./circuit_io [path]
//
// Useful as a template for feeding hand-written or externally converted
// netlists into the router.
#include <cstdio>
#include <string>

#include "ptwgr/circuit/circuit_stats.h"
#include "ptwgr/circuit/generator.h"
#include "ptwgr/circuit/io.h"
#include "ptwgr/route/router.h"

int main(int argc, char** argv) {
  using namespace ptwgr;
  const std::string path =
      argc > 1 ? argv[1] : "/tmp/ptwgr_example_circuit.ckt";

  GeneratorConfig config;
  config.seed = 2026;
  config.num_rows = 12;
  config.num_cells = 900;
  config.num_nets = 950;
  const Circuit original = generate_circuit(config);
  std::printf("generated: %s\n", compute_stats(original).to_string().c_str());

  write_circuit_file(path, original);
  std::printf("saved to %s\n", path.c_str());

  const Circuit restored = read_circuit_file(path);
  std::printf("reloaded: %s\n", compute_stats(restored).to_string().c_str());

  RouterOptions options;
  options.seed = 7;
  const RoutingResult a = route_serial(original, options);
  const RoutingResult b = route_serial(restored, options);
  std::printf("routing original: %s\n", a.metrics.to_string().c_str());
  std::printf("routing restored: %s\n", b.metrics.to_string().c_str());

  if (a.metrics.track_count == b.metrics.track_count &&
      a.metrics.area == b.metrics.area) {
    std::printf("round-trip preserved routing behaviour exactly\n");
    return 0;
  }
  std::printf("ERROR: round-trip changed routing results\n");
  return 1;
}
